// Package harness drives the paper's benchmarks: it wires machines,
// memories, locks, schemes and data structures into measured workloads, and
// regenerates every figure of the evaluation section (Figures 2, 3, 4, 9,
// 10 via the data-structure benchmarks here; Figure 11 via internal/stamp).
//
// Invariants: each benchmark point is one self-contained simulated machine,
// so a Result is a bit-for-bit deterministic function of its DSConfig; the
// Runner may compute independent points on parallel host goroutines and
// memoize them without affecting any result (asserted end to end by the
// golden seed-digest tests in golden_test.go).
package harness

import (
	"fmt"

	"elision/internal/core"
	"elision/internal/htm"
	"elision/internal/locks"
	"elision/internal/obs"
	"elision/internal/trace"
)

// LockID selects a lock implementation.
type LockID string

// Lock identifiers.
const (
	LockTTAS      LockID = "ttas"
	LockMCS       LockID = "mcs"
	LockTicketHLE LockID = "ticket-hle"
	LockCLHHLE    LockID = "clh-hle"
)

// SchemeID selects an execution scheme.
type SchemeID string

// Scheme identifiers (§7's six schemes plus the no-locking baseline).
const (
	SchemeNoLock     SchemeID = "nolock"
	SchemeStandard   SchemeID = "standard"
	SchemeHLE        SchemeID = "hle"
	SchemeHLERetries SchemeID = "hle-retries"
	SchemeHLESCM     SchemeID = "hle-scm"
	SchemeOptSLR     SchemeID = "opt-slr"
	SchemeSLRSCM     SchemeID = "slr-scm"
	// SchemeHLESCMGrouped is the §6-Remark extension: SCM with per-conflict-
	// location auxiliary lock groups.
	SchemeHLESCMGrouped SchemeID = "hle-scm-grouped"
	// SchemeSLRSCMGrouped is grouped SCM over SLR attempts.
	SchemeSLRSCMGrouped SchemeID = "slr-scm-grouped"
	// SchemeAdaptiveHLE / SchemeAdaptiveSLR are the ck_elide-style adaptive
	// family: per-abort-class retry budgets with forfeit windows, configured
	// per point via DSConfig.ACfg.
	SchemeAdaptiveHLE SchemeID = "adaptive-hle"
	SchemeAdaptiveSLR SchemeID = "adaptive-slr"
	// SchemeLazySub is the deliberately unsafe lazy-subscription scheme
	// (core.LazySub): SLR with an escaped, non-subscribing commit-time lock
	// check. It exists as the modelcheck adversary and is excluded from
	// AllSchemes (figures measure correct schemes); pair it with
	// DSConfig.HWFix to benchmark the hardware fix's cost.
	SchemeLazySub SchemeID = "lazysub"
)

// AllSchemes is §7's evaluation order.
var AllSchemes = []SchemeID{
	SchemeStandard, SchemeHLE, SchemeHLERetries, SchemeHLESCM, SchemeOptSLR, SchemeSLRSCM,
}

// Mix is an operation distribution over insert/delete/lookup, in percent.
type Mix struct {
	InsertPct int
	DeletePct int
}

// The paper's three contention mixes (§4, Figure 4).
var (
	// MixLookupOnly is "no contention": 100% lookups.
	MixLookupOnly = Mix{0, 0}
	// MixModerate is "moderate contention": 10% insert, 10% delete.
	MixModerate = Mix{10, 10}
	// MixExtensive is "extensive contention": 50% insert, 50% delete.
	MixExtensive = Mix{50, 50}
)

// Name renders a mix the way the paper labels it.
func (x Mix) Name() string {
	switch x {
	case MixLookupOnly:
		return "lookups-only"
	case MixModerate:
		return "20% updates"
	case MixExtensive:
		return "100% updates"
	default:
		return fmt.Sprintf("%d%%ins/%d%%del", x.InsertPct, x.DeletePct)
	}
}

// Structure selects the benchmark data structure.
type Structure string

// Structures.
const (
	StructTree Structure = "rbtree"
	StructHash Structure = "hashtable"
)

// DSConfig describes one data-structure benchmark point. It is comparable,
// so results can be memoized across figures that share points.
type DSConfig struct {
	Structure    Structure
	Threads      int
	Size         int // steady-state element count; key domain is [0, 2*Size)
	Mix          Mix
	Scheme       SchemeID
	Lock         LockID
	BudgetCycles uint64 // virtual-cycle budget per thread
	SlotCycles   uint64 // when >0, sample per-slot stats (Figure 3)
	Seed         uint64
	Quantum      uint64
	// Cores enables the SMT model (0 = one proc per core). The paper's
	// testbed maps to Cores=4 with Threads=8.
	Cores int
	// ACfg is the adaptive-family configuration in its canonical string form
	// (core.AdaptiveConfig.String, e.g. "5/2,16/5,0/8,3/3"). Empty means the
	// default config. Ignored by non-adaptive schemes; kept a string so
	// DSConfig stays comparable for memoization.
	ACfg string
	// HWFix arms htm.Config.AbortOnDangerousWhileUnsubscribed for the point:
	// the lazy-subscription hardware fix. Only lazysub behaves differently
	// under it (its speculative attempts abort and the lock path carries the
	// load); correct schemes never take a dangerous action.
	HWFix bool
}

// Slot is one time-slot sample for Figure 3.
type Slot struct {
	Ops     uint64
	NonSpec uint64
}

// Result is the outcome of one benchmark point.
type Result struct {
	Config DSConfig
	Stats  core.Stats
	// Cycles is the virtual time the run actually covered.
	Cycles uint64
	// Slots is the per-slot timeline when Config.SlotCycles > 0.
	Slots []Slot
	// LockLines is the set of cache lines the point's lock protocol
	// occupies (nil when the lock cannot report them). Observed runs use it
	// to annotate the hot-line profiler's table and to assert whether the
	// lock's line is what transactions are aborting on.
	LockLines []int
}

// HasLockLine reports whether line belongs to the result's lock footprint.
func (r Result) HasLockLine(line int) bool {
	for _, l := range r.LockLines {
		if l == line {
			return true
		}
	}
	return false
}

// Throughput returns operations per million virtual cycles.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Stats.Ops) * 1e6 / float64(r.Cycles)
}

// buildLock constructs the lock for a point.
func buildLock(hm *htm.Memory, id LockID, procs int) locks.Elidable {
	l, err := core.BuildLock(hm, string(id), procs)
	if err != nil {
		panic(err)
	}
	return l
}

// buildScheme constructs the scheme for a point.
func buildScheme(hm *htm.Memory, id SchemeID, l locks.Elidable, procs int) core.Scheme {
	s, err := core.BuildScheme(hm, string(id), l, procs)
	if err != nil {
		panic(err)
	}
	return s
}

// memoryWords sizes simulated memory for a point: room for 2×Size live
// nodes, per-thread arena churn, hash buckets and slack.
func memoryWords(cfg DSConfig) int {
	nodes := 2*cfg.Size + cfg.Threads*64*8 + 4096
	words := nodes * 8
	if cfg.Structure == StructHash {
		words += bucketCount(cfg.Size) * 8
	}
	return words + 1<<16
}

// bucketCount picks the hash-table geometry for a target size.
func bucketCount(size int) int {
	b := 64
	for b < size {
		b <<= 1
	}
	return b
}

// dataStructure is the operation interface shared by both benchmarks.
type dataStructure interface {
	Insert(ac htm.Accessor, key, val int64) bool
	Delete(ac htm.Accessor, key int64) bool
	Lookup(ac htm.Accessor, key int64) (int64, bool)
}

// RunDataStructure executes one benchmark point and returns its result.
// Runs are deterministic functions of the config.
func RunDataStructure(cfg DSConfig) Result {
	return RunDataStructureObserved(cfg, nil, nil)
}

// RunDataStructureObserved is RunDataStructure with observability attached:
// col (when non-nil) receives the run's metrics, hot lines and time series,
// and tr (when non-nil) records the run's events for timelines and
// Chrome-trace export. Instrumentation only reads the simulation, so an
// observed run's virtual-time results equal the unobserved run's.
//
// Each call builds a throwaway Instance; campaigns reuse pooled instances
// via Runner / fleet instead.
func RunDataStructureObserved(cfg DSConfig, col *obs.Collector, tr *trace.Tracer) Result {
	return NewInstance(nil).RunObserved(cfg, col, tr)
}
