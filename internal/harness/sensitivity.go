package harness

import (
	"fmt"

	"elision/internal/core"
	"elision/internal/htm"
	"elision/internal/rbtree"
	"elision/internal/sim"
)

// CostSensitivity quantifies how the cost model's miss:hit ratio — the main
// synthetic knob in this reproduction — affects the headline results. For
// each ratio it reports the HLE speedup over the standard lock and the
// non-speculative fraction, for both locks at the canonical 128-node
// moderate-contention point. The qualitative structure (TTAS gains, MCS
// flat, MCS fully serialized) must hold across the sweep for the
// reproduction's conclusions to be robust; this table is the evidence.
func CostSensitivity(sc Scale) []Table {
	nt := sc.maxThreads()
	ratios := []uint64{1, 4, 8, 14, 28}
	t := Table{
		Title: fmt.Sprintf("Cost-model sensitivity: miss:hit ratio sweep, %d threads, 128-node tree, 20%% updates",
			nt),
		Columns: []string{"miss:hit", "ttas-hle-speedup", "mcs-hle-speedup", "ttas-nonspec", "mcs-nonspec"},
	}
	for _, ratio := range ratios {
		cost := sim.DefaultCost()
		cost.MemHit = 4
		cost.MemMiss = 4 * ratio
		var speed [2]float64
		var nonspec [2]float64
		for i, lock := range benchLocks {
			hle := runCostPoint(sc, nt, lock, core.SchemeNameHLE, cost)
			std := runCostPoint(sc, nt, lock, core.SchemeNameStandard, cost)
			speed[i] = ratio2(hle.tput, std.tput)
			nonspec[i] = hle.nonspec
		}
		t.AddRow(fmt.Sprintf("%d:1", ratio), F2(speed[0]), F2(speed[1]), F3(nonspec[0]), F3(nonspec[1]))
	}
	return []Table{t}
}

// costPoint is one measured configuration under a custom cost model.
type costPoint struct {
	tput    float64
	nonspec float64
}

// runCostPoint runs the canonical tree point under an explicit cost model
// (outside the Runner cache, which is keyed for the default model).
func runCostPoint(sc Scale, threads int, lock LockID, scheme string, cost sim.CostModel) costPoint {
	m := sim.MustNew(sim.Config{Procs: threads, Seed: sc.Seed, Quantum: sc.Quantum, Cores: sc.Cores})
	hm := htm.NewMemory(m, htm.Config{Words: 1 << 18, Cost: cost})
	tree := rbtree.New(hm, threads)
	raw := htm.Raw{M: hm}
	for i := 0; i < 128; i++ {
		tree.Insert(raw, int64(i*2), 1)
	}
	l, err := core.BuildLock(hm, string(lock), threads)
	if err != nil {
		panic(err)
	}
	s, err := core.BuildScheme(hm, scheme, l, threads)
	if err != nil {
		panic(err)
	}
	var stats core.Stats
	for i := 0; i < threads; i++ {
		m.Go(func(p *sim.Proc) {
			for p.Clock() < sc.Budget {
				key := int64(p.RandN(256))
				r := p.RandN(100)
				switch {
				case r < 10:
					stats.Add(s.Critical(p, func(c htm.Ctx) { tree.Insert(c, key, 1) }))
				case r < 20:
					stats.Add(s.Critical(p, func(c htm.Ctx) { tree.Delete(c, key) }))
				default:
					stats.Add(s.Critical(p, func(c htm.Ctx) { tree.Lookup(c, key) }))
				}
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(fmt.Sprintf("harness: cost point: %v", err))
	}
	var maxClock uint64
	for i := 0; i < threads; i++ {
		if c := m.Proc(i).Clock(); c > maxClock {
			maxClock = c
		}
	}
	return costPoint{
		tput:    float64(stats.Ops) * 1e6 / float64(maxClock),
		nonspec: stats.NonSpecFraction(),
	}
}

// ratio2 guards against division by zero (local alias; ratio lives in
// figures.go).
func ratio2(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
