package elision

import (
	"testing"
)

func TestQuickstartCounter(t *testing.T) {
	sys, err := NewSystem(Config{Threads: 8, Seed: 1, Quantum: 64})
	if err != nil {
		t.Fatal(err)
	}
	lock := sys.NewMCSLock()
	scheme := sys.HLESCM(lock)
	counter := sys.Alloc(1)
	const iters = 50
	var stats Stats
	for i := 0; i < 8; i++ {
		sys.Go(func(p *Proc) {
			for k := 0; k < iters; k++ {
				stats.Add(scheme.Critical(p, func(c Ctx) {
					c.Store(counter, c.Load(counter)+1)
				}))
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Setup().Load(counter); got != 8*iters {
		t.Fatalf("counter = %d, want %d", got, 8*iters)
	}
	if stats.Ops != 8*iters {
		t.Fatalf("stats.Ops = %d", stats.Ops)
	}
}

func TestAllPublicConstructors(t *testing.T) {
	sys, err := NewSystem(Config{Threads: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	elidables := []Elidable{
		sys.NewTTASLock(), sys.NewBackoffTTASLock(), sys.NewMCSLock(),
		sys.NewTicketHLELock(), sys.NewCLHHLELock(),
	}
	plain := []Lock{sys.NewTicketLock(), sys.NewCLHLock()}
	var schemes []Scheme
	for _, l := range elidables {
		schemes = append(schemes,
			sys.NewStandard(l), sys.NewHLE(l), sys.HLERetries(l, 10),
			sys.OptSLR(l), sys.HLESCM(l), sys.SLRSCM(l),
			sys.GroupedHLESCM(l, 4), sys.GroupedSLRSCM(l, 4))
	}
	for _, l := range plain {
		schemes = append(schemes, sys.NewStandard(l), sys.OptSLR(l), sys.HLESCM(l))
	}
	// One counter per scheme: procs may be at different schemes at the same
	// moment, and only critical sections under the SAME lock exclude each
	// other.
	counters := make([]Addr, len(schemes))
	for i := range counters {
		counters[i] = sys.Alloc(1)
	}
	for i := 0; i < 4; i++ {
		sys.Go(func(p *Proc) {
			for si, s := range schemes {
				data := counters[si]
				s.Critical(p, func(c Ctx) {
					c.Store(data, c.Load(data)+1)
				})
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i, a := range counters {
		if got := sys.Setup().Load(a); got != 4 {
			t.Fatalf("scheme %d (%s): counter = %d, want 4", i, schemes[i].Name(), got)
		}
	}
}

func TestDefaultMemorySize(t *testing.T) {
	sys, err := NewSystem(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Memory().Store().Words() < 1<<20 {
		t.Fatalf("default memory too small: %d words", sys.Memory().Store().Words())
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := NewSystem(Config{Threads: 0}); err == nil {
		t.Fatal("NewSystem(Threads: 0) succeeded")
	}
	if _, err := NewSystem(Config{Threads: 100}); err == nil {
		t.Fatal("NewSystem(Threads: 100) succeeded")
	}
}
